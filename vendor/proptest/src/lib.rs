//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so this path crate
//! re-implements the subset of the proptest API the workspace's property
//! tests use: the [`Strategy`] trait with `prop_map`/`boxed`, range and
//! regex-lite string strategies, tuple composition, `prop::collection::vec`,
//! `prop::option::of`, `prop::sample::select`, `any::<T>()`, the
//! `proptest!`/`prop_oneof!`/`prop_assert!`/`prop_assert_eq!` macros and a
//! [`test_runner::TestRunner`].
//!
//! Differences from real proptest, deliberately accepted:
//! - **No shrinking.** A failing case reports the generated input as-is.
//! - **Deterministic seeding.** Case `i` of every test derives its RNG
//!   from a fixed seed, so CI failures reproduce locally.
//! - String strategies support character classes with `{m,n}` repetition
//!   (e.g. `"[a-z]{1,8}"`), not full regex syntax.

use std::fmt::Debug;
use std::sync::Arc;

/// Deterministic RNG handed to strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates an RNG from a seed.
    pub fn seed(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        self.next_u64() % n
    }
}

/// A value generator.
pub trait Strategy {
    /// The type of generated values.
    type Value: Debug;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Erases the strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + Send + Sync + 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Arc<dyn Strategy<Value = T> + Send + Sync>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Weighted union of boxed strategies (built by `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u32,
}

impl<T: Debug> Union<T> {
    /// Creates a union; weights must not all be zero.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
        let total = arms.iter().map(|(w, _)| *w).sum();
        assert!(total > 0, "prop_oneof! needs at least one positive weight");
        Union { arms, total }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(u64::from(self.total)) as u32;
        for (weight, strat) in &self.arms {
            if pick < *weight {
                return strat.generate(rng);
            }
            pick -= weight;
        }
        unreachable!("weights sum to total")
    }
}

macro_rules! impl_int_range {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let unit = ((rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64);
                self.start + (self.end - self.start) * unit as $t
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// `&str` strategies: a regex-lite pattern of literal characters and
/// character classes with optional `{m,n}` repetition.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        pattern::generate(self, rng)
    }
}

mod pattern {
    use super::TestRng;

    enum Atom {
        Literal(char),
        Class(Vec<char>),
    }

    /// Parses and samples a `[class]{m,n}`-style pattern.
    pub fn generate(pat: &str, rng: &mut TestRng) -> String {
        let chars: Vec<char> = pat.chars().collect();
        let mut out = String::new();
        let mut i = 0;
        while i < chars.len() {
            let atom = if chars[i] == '[' {
                let close = chars[i..]
                    .iter()
                    .position(|c| *c == ']')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unclosed character class in pattern {pat:?}"));
                let mut members = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        let (lo, hi) = (chars[j], chars[j + 2]);
                        members.extend((lo..=hi).filter(|c| c.is_ascii()));
                        j += 3;
                    } else {
                        members.push(chars[j]);
                        j += 1;
                    }
                }
                i = close + 1;
                assert!(!members.is_empty(), "empty character class in {pat:?}");
                Atom::Class(members)
            } else {
                let c = chars[i];
                i += 1;
                Atom::Literal(c)
            };
            // Optional {m,n} / {n} repetition.
            let (min, max) = if i < chars.len() && chars[i] == '{' {
                let close = chars[i..]
                    .iter()
                    .position(|c| *c == '}')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unclosed repetition in pattern {pat:?}"));
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse::<usize>().expect("repetition bound"),
                        hi.trim().parse::<usize>().expect("repetition bound"),
                    ),
                    None => {
                        let n = body.trim().parse::<usize>().expect("repetition bound");
                        (n, n)
                    }
                }
            } else {
                (1, 1)
            };
            let count = if max > min {
                min + rng.below((max - min + 1) as u64) as usize
            } else {
                min
            };
            for _ in 0..count {
                match &atom {
                    Atom::Literal(c) => out.push(*c),
                    Atom::Class(members) => {
                        out.push(members[rng.below(members.len() as u64) as usize]);
                    }
                }
            }
        }
        out
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
    (A, B, C, D, E, F, G, H, I)
    (A, B, C, D, E, F, G, H, I, J)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// A length specification for [`vec`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        max: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { min: n, max: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Strategy producing `Vec`s of `element` with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.max > self.size.min {
                self.size.min + rng.below((self.size.max - self.size.min + 1) as u64) as usize
            } else {
                self.size.min
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Option strategies.
pub mod option {
    use super::{Strategy, TestRng};

    /// Strategy producing `Some(inner)` about three times in four.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// Strategy returned by [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// Sampling strategies.
pub mod sample {
    use super::{Strategy, TestRng};
    use std::fmt::Debug;

    /// Strategy picking one element of `options` (cloned).
    pub fn select<T: Clone + Debug>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select over empty options");
        Select { options }
    }

    /// Strategy returned by [`select`].
    #[derive(Debug, Clone)]
    pub struct Select<T> {
        options: Vec<T>,
    }

    impl<T: Clone + Debug> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.options[rng.below(self.options.len() as u64) as usize].clone()
        }
    }
}

/// The `any::<T>()` entry point.
pub mod arbitrary {
    use super::{Strategy, TestRng};
    use std::fmt::Debug;
    use std::marker::PhantomData;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized + Debug {
        /// Generates an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),* $(,)?) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Finite values only, spread over a wide magnitude range.
            let mantissa = ((rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64);
            let exp = (rng.next_u64() % 61) as i32 - 30;
            let sign = if rng.next_u64() & 1 == 1 { -1.0 } else { 1.0 };
            sign * mantissa * 2f64.powi(exp)
        }
    }

    /// Strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Runner, configuration and error types.
pub mod test_runner {
    use super::{Strategy, TestRng};
    use std::fmt;

    /// Per-test configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases to run.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(64);
            ProptestConfig { cases }
        }
    }

    /// A test-body failure (what `prop_assert!` produces).
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        reason: String,
    }

    impl TestCaseError {
        /// Creates a failure with a reason.
        pub fn fail(reason: impl Into<String>) -> TestCaseError {
            TestCaseError {
                reason: reason.into(),
            }
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.reason)
        }
    }

    /// A whole-test failure: which case failed, on what input, and why.
    #[derive(Debug)]
    pub struct TestError {
        /// Zero-based index of the failing case.
        pub case: u32,
        /// Debug rendering of the generated input.
        pub input: String,
        /// The failure reason.
        pub reason: TestCaseError,
    }

    impl fmt::Display for TestError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(
                f,
                "property failed at case {}: {}\n  input: {}",
                self.case, self.reason, self.input
            )
        }
    }

    /// Drives a strategy through `cases` deterministic runs.
    pub struct TestRunner {
        config: ProptestConfig,
    }

    const BASE_SEED: u64 = 0x0A0_7E57_CAFE;

    impl TestRunner {
        /// Creates a runner with `config`.
        pub fn new(config: ProptestConfig) -> TestRunner {
            TestRunner { config }
        }

        /// Runs `test` against `config.cases` generated inputs.
        ///
        /// Panics inside the test body propagate (after printing the
        /// offending input); `prop_assert!`-style failures are returned
        /// as a [`TestError`].
        pub fn run<S: Strategy>(
            &mut self,
            strategy: &S,
            test: impl Fn(S::Value) -> Result<(), TestCaseError>,
        ) -> Result<(), TestError> {
            for case in 0..self.config.cases {
                let mut rng =
                    TestRng::seed(BASE_SEED ^ u64::from(case).wrapping_mul(0x2545_F491_4F6C_DD1D));
                let value = strategy.generate(&mut rng);
                let input = format!("{value:?}");
                let outcome =
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| test(value)));
                match outcome {
                    Ok(Ok(())) => {}
                    Ok(Err(reason)) => {
                        return Err(TestError {
                            case,
                            input,
                            reason,
                        })
                    }
                    Err(panic) => {
                        eprintln!("property panicked at case {case}\n  input: {input}");
                        std::panic::resume_unwind(panic);
                    }
                }
            }
            Ok(())
        }
    }
}

/// Everything the tests import.
pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRunner};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, BoxedStrategy, Just,
        Strategy,
    };
}

/// Defines property tests over strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! {
            (<$crate::test_runner::ProptestConfig as ::core::default::Default>::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (($cfg:expr); $($(#[$meta:meta])* fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut runner = $crate::test_runner::TestRunner::new(config);
                let result = runner.run(
                    &($($strat,)+),
                    |($($arg,)+)| -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        Ok(())
                    },
                );
                if let Err(e) = result {
                    panic!("{e}");
                }
            }
        )*
    };
}

/// Picks among several strategies, optionally weighted (`w => strat`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(($weight as u32, $crate::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::prop_oneof![$(1 => $strat),+]
    };
}

/// Asserts inside a property body, failing the case (not panicking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {:?} == {:?}: {}", l, r, format!($($fmt)*)
        );
    }};
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} != {:?}", l, r);
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_patterns_generate_in_bounds() {
        let mut rng = crate::TestRng::seed(1);
        for _ in 0..200 {
            let v = (0i64..100).generate(&mut rng);
            assert!((0..100).contains(&v));
            let s = "[a-z]{1,8}".generate(&mut rng);
            assert!((1..=8).contains(&s.len()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
            let t = "[A-Z][a-z_]{1,8}".generate(&mut rng);
            assert!(t.chars().next().unwrap().is_ascii_uppercase());
        }
    }

    #[test]
    fn union_respects_weights_roughly() {
        let mut rng = crate::TestRng::seed(2);
        let u = prop_oneof![3 => Just(true), 1 => Just(false)];
        let trues = (0..1000).filter(|_| u.generate(&mut rng)).count();
        assert!((600..900).contains(&trues), "trues = {trues}");
    }

    #[test]
    fn deterministic_across_runners() {
        let s = prop::collection::vec(0i32..10, 0..5);
        let mut a = crate::TestRng::seed(9);
        let mut b = crate::TestRng::seed(9);
        for _ in 0..50 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn macro_round_trip(v in prop::collection::vec(any::<i32>(), 0..8), flag in any::<bool>()) {
            prop_assert_eq!(v.len(), v.iter().count());
            prop_assert!(flag || !flag);
        }
    }

    proptest! {
        #[test]
        fn option_and_select(o in prop::option::of(1u8..5), pick in prop::sample::select(vec!["a", "b"])) {
            if let Some(v) = o {
                prop_assert!((1..5).contains(&v));
            }
            prop_assert!(pick == "a" || pick == "b");
        }
    }
}
