//! Offline stand-in for the `bytes` crate.
//!
//! Implements the cursor-style [`Buf`]/[`BufMut`] traits plus [`Bytes`]
//! and [`BytesMut`] containers — the subset the WAL codec uses. All
//! integers are big-endian, matching the real crate's `get_*`/`put_*`
//! defaults used here.

use std::ops::Deref;

/// Read-side cursor over a byte buffer.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;

    /// Copies `dst.len()` bytes out, advancing the cursor.
    ///
    /// # Panics
    /// Panics if fewer than `dst.len()` bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Consumes one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Consumes a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    /// Consumes a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }

    /// Consumes a big-endian `i64`.
    fn get_i64(&mut self) -> i64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        i64::from_be_bytes(b)
    }

    /// Consumes a big-endian `f64`.
    fn get_f64(&mut self) -> f64 {
        f64::from_bits(self.get_u64())
    }

    /// Consumes `len` bytes into an owned [`Bytes`].
    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        let mut out = vec![0u8; len];
        self.copy_to_slice(&mut out);
        Bytes::from(out)
    }
}

/// Write-side byte sink.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `i64`.
    fn put_i64(&mut self, v: i64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `f64`.
    fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }
}

/// An immutable byte buffer with a read cursor.
#[derive(Debug, Clone, Default)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    /// Creates a buffer by copying `src`.
    pub fn copy_from_slice(src: &[u8]) -> Bytes {
        Bytes {
            data: src.to_vec(),
            pos: 0,
        }
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Bytes {
        Bytes { data, pos: 0 }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.pos..]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(
            dst.len() <= self.remaining(),
            "buffer underflow: need {} bytes, have {}",
            dst.len(),
            self.remaining()
        );
        dst.copy_from_slice(&self.data[self.pos..self.pos + dst.len()]);
        self.pos += dst.len();
    }
}

/// A growable byte buffer.
#[derive(Debug, Clone, Default)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Freezes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_widths() {
        let mut buf = BytesMut::with_capacity(64);
        buf.put_u8(7);
        buf.put_u32(0xDEAD_BEEF);
        buf.put_u64(42);
        buf.put_i64(-9);
        buf.put_f64(2.5);
        buf.put_slice(b"xyz");
        let mut b = buf.freeze();
        assert_eq!(b.get_u8(), 7);
        assert_eq!(b.get_u32(), 0xDEAD_BEEF);
        assert_eq!(b.get_u64(), 42);
        assert_eq!(b.get_i64(), -9);
        assert_eq!(b.get_f64(), 2.5);
        assert_eq!(b.copy_to_bytes(3).to_vec(), b"xyz");
        assert!(!b.has_remaining());
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn underflow_panics() {
        let mut b = Bytes::copy_from_slice(&[1]);
        b.get_u32();
    }
}
