//! Offline stand-in for the `criterion` crate.
//!
//! Provides the benchmark-definition API the `xomatiq-bench` crate uses
//! (`criterion_group!`, `criterion_main!`, benchmark groups, `iter`,
//! `iter_batched`, `Throughput`, `BenchmarkId`) with a simple
//! mean-of-samples wall-clock measurement printed to stdout — no
//! statistics, plots or baselines.

use std::fmt;
use std::time::Instant;

/// Opaque-to-the-optimizer identity function.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortizes setup cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Many iterations per setup batch.
    SmallInput,
    /// Few iterations per setup batch.
    LargeInput,
    /// Fresh setup for every iteration.
    PerIteration,
}

/// Declared throughput of one benchmark iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A benchmark's identifier, `function/parameter` style.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id that is just a parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Things accepted as a benchmark id.
pub trait IntoBenchmarkId {
    /// Converts into a [`BenchmarkId`].
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            id: self.to_string(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { id: self }
    }
}

/// Measures closures handed to it by a benchmark body.
pub struct Bencher {
    samples: usize,
    mean_ns: f64,
}

impl Bencher {
    /// Times `routine` over the configured number of samples.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(routine());
        }
        self.mean_ns = start.elapsed().as_nanos() as f64 / self.samples as f64;
    }

    /// Times `routine` with a fresh `setup` product per batch.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let mut total_ns = 0u128;
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total_ns += start.elapsed().as_nanos();
        }
        self.mean_ns = total_ns as f64 / self.samples as f64;
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Declares per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into_benchmark_id();
        let mut bencher = Bencher {
            samples: self.samples,
            mean_ns: 0.0,
        };
        f(&mut bencher);
        self.report(&id, bencher.mean_ns);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let id = id.into_benchmark_id();
        let mut bencher = Bencher {
            samples: self.samples,
            mean_ns: 0.0,
        };
        f(&mut bencher, input);
        self.report(&id, bencher.mean_ns);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}

    fn report(&self, id: &BenchmarkId, mean_ns: f64) {
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if mean_ns > 0.0 => {
                format!("  {:.0} elem/s", n as f64 / (mean_ns / 1e9))
            }
            Some(Throughput::Bytes(n)) if mean_ns > 0.0 => {
                format!("  {:.0} B/s", n as f64 / (mean_ns / 1e9))
            }
            _ => String::new(),
        };
        println!("{}/{}: {:.0} ns/iter{}", self.name, id, mean_ns, rate);
    }
}

/// Benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Accepts (and ignores) command-line configuration.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            samples: 10,
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function(&mut self, id: impl IntoBenchmarkId, f: impl FnMut(&mut Bencher)) {
        let mut group = self.benchmark_group("bench");
        group.bench_function(id, f);
        group.finish();
    }
}

/// Defines a benchmark group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Defines `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        group.throughput(Throughput::Elements(10));
        group.bench_function(BenchmarkId::new("sum", 10), |b| {
            b.iter(|| (0..10u64).sum::<u64>())
        });
        group.bench_with_input(BenchmarkId::from_parameter(5), &5u64, |b, n| {
            b.iter_batched(|| *n, |v| v * 2, BatchSize::PerIteration)
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_runs_without_panicking() {
        benches();
    }
}
