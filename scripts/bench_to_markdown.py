#!/usr/bin/env python3
"""Renders Criterion output (bench_output.txt) into the EXPERIMENTS.md
performance tables, replacing the `<!-- BENCH:group -->` placeholders."""

import re
import sys

BENCH = "bench_output.txt"
DOC = "EXPERIMENTS.md"

# group-in-file -> placeholder tag
GROUPS = {
    "query_modes": "query_modes",
    "index_ablation": "index_ablation",
    "reconstruction": "reconstruction",
    "shred_load": "shredding",
    "shred_containment_query": "shredding",
    "xml_transform": "transform",
    "incremental_update": "update",
    "keyword_search": "keyword",
    "motif_scan": "motif",
    "concurrent_readers": "concurrency",
    "federation": "federation",
}


def parse(path):
    results = []  # (group, bench_id, median)
    name = None
    for line in open(path):
        m = re.match(r"^(\S+)\s+time:\s+\[([^\]]+)\]", line)
        if m:
            parts = m.group(2).split()
            bench_id = m.group(1)
            results.append((bench_id.split("/")[0], bench_id, f"{parts[2]} {parts[3]}"))
            name = None
            continue
        if line.startswith("Benchmarking ") and line.rstrip().endswith(": Analyzing"):
            name = line[len("Benchmarking "):].rsplit(": Analyzing", 1)[0].strip()
            continue
        m2 = re.search(r"time:\s+\[([^\]]+)\]", line)
        if m2 and name:
            parts = m2.group(1).split()
            results.append((name.split("/")[0], name, f"{parts[2]} {parts[3]}"))
            name = None
    return results


def render(results):
    by_tag = {}
    for group, name, median in results:
        tag = GROUPS.get(group)
        if not tag:
            continue
        by_tag.setdefault(tag, []).append((name, median))
    tables = {}
    for tag, rows in by_tag.items():
        lines = ["| benchmark | median time |", "|---|---|"]
        for name, median in rows:
            lines.append(f"| `{name}` | {median} |")
        tables[tag] = "\n".join(lines)
    return tables


def main():
    results = parse(BENCH)
    if not results:
        print("no results parsed", file=sys.stderr)
        sys.exit(1)
    tables = render(results)
    doc = open(DOC).read()
    for tag, table in tables.items():
        placeholder = f"<!-- BENCH:{tag} -->"
        if placeholder in doc:
            doc = doc.replace(placeholder, table)
    open(DOC, "w").write(doc)
    print(f"updated {DOC} with {len(results)} measurements across {len(tables)} tables")


if __name__ == "__main__":
    main()
